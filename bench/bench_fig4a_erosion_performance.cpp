// E-F4a — Figure 4a: end-to-end performance of the erosion application,
// standard method (with Zhai-style adaptive LB) vs. ULBA (α = 0.4).
//
// Paper (Fig. 4a): P ∈ {32, 64, 128, 256}, 1–3 strongly erodible rocks among
// P rocks, median of five runs. ULBA wins everywhere (up to 16 %), ties only
// at 32 PEs / 3 rocks, and the advantage shrinks as the fraction of
// overloading PEs grows.
//
// Substitution (DESIGN.md §3): the cluster is replaced by the virtual-time
// BSP machine and the domain is scaled down proportionally; the printed
// seconds are virtual but every LB decision runs the real code path.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

int main() {
  using namespace ulba;
  bench::print_header(
      "Figure 4a — erosion application: standard (Zhai-adaptive) vs. ULBA",
      "Boulmier et al., CLUSTER'19, Fig. 4a: ULBA up to 16% faster, tie at "
      "32 PEs / 3 strong rocks, scales with P");

  const std::vector<std::int64_t> pe_counts{32, 64, 128, 256};
  const std::vector<std::int64_t> rock_counts{1, 2, 3};
  const std::vector<std::uint64_t> seeds{11, 22, 33, 44, 55};

  struct Case {
    std::int64_t pe_count, rocks;
    erosion::Method method;
    std::uint64_t seed;
  };
  std::vector<Case> cases;
  for (std::int64_t p : pe_counts)
    for (std::int64_t r : rock_counts)
      for (auto m : {erosion::Method::kStandard, erosion::Method::kUlba})
        for (std::uint64_t s : seeds) cases.push_back({p, r, m, s});

  const auto results = bench::parallel_map(cases.size(), [&](std::size_t i) {
    const Case& c = cases[i];
    return erosion::ErosionApp(
               bench::scaled_app_config(c.pe_count, c.rocks, c.method, c.seed))
        .run();
  });

  const auto median_time = [&](std::int64_t p, std::int64_t r,
                               erosion::Method m) {
    std::vector<double> times;
    for (std::size_t i = 0; i < cases.size(); ++i)
      if (cases[i].pe_count == p && cases[i].rocks == r &&
          cases[i].method == m)
        times.push_back(results[i].total_seconds);
    return support::median(times);
  };

  support::Table table({"PEs", "strong rocks", "standard [s]", "ULBA [s]",
                        "ULBA gain", "paper gain trend"});
  bool ulba_never_slower = true;
  double max_gain = 0.0;
  std::vector<double> gain_at_32;

  for (std::int64_t r : rock_counts) {
    for (std::int64_t p : pe_counts) {
      const double t_std = median_time(p, r, erosion::Method::kStandard);
      const double t_ulba = median_time(p, r, erosion::Method::kUlba);
      const double gain = (t_std - t_ulba) / t_std;
      max_gain = std::max(max_gain, gain);
      if (gain < -0.02) ulba_never_slower = false;  // 2 % noise band
      if (p == 32) gain_at_32.push_back(gain);
      table.add_row(
          {std::to_string(p), std::to_string(r),
           support::Table::num(t_std, 3), support::Table::num(t_ulba, 3),
           support::Table::pct(gain, 1),
           r == 3 && p == 32 ? "~0% (tie)" : ">0%"});
    }
  }
  std::printf("\nMedian of %zu seeds per cell, virtual seconds:\n\n",
              seeds.size());
  std::printf("%s\n", table.render(2).c_str());

  // Paper shape: at 32 PEs the gain shrinks as strong rocks increase
  // (overloading fraction grows), vanishing at 3 rocks.
  const bool gain_shrinks_at_32 =
      gain_at_32.size() == 3 && gain_at_32[0] >= gain_at_32[2] - 0.02;

  std::printf("  ULBA never slower (2%% band)      : %s (paper: yes)\n",
              ulba_never_slower ? "yes" : "NO");
  std::printf("  peak ULBA gain                   : %.1f%% (paper: 16%%)\n",
              max_gain * 100.0);
  std::printf("  gain shrinks with rocks at P=32  : %s (paper: yes)\n",
              gain_shrinks_at_32 ? "yes" : "NO");

  const bool ok = ulba_never_slower && max_gain > 0.03 && gain_shrinks_at_32;
  std::printf("\n  verdict: %s\n",
              ok ? "SHAPE REPRODUCED" : "SHAPE MISMATCH");
  return ok ? 0 : 1;
}
