// E-X5 (extension) — partitioner ablation: the paper's greedy stripe scan
// vs. 1-D recursive bisection vs. the exact min–max(load/target) optimum
// vs. weight-agnostic even stripes.
//
// Two questions: (a) how far from optimal is the paper's cutting technique
// on the erosion workload's column-weight profiles, and (b) does a better
// cut change the end-to-end standard-vs-ULBA comparison? (Spoiler: the
// greedy scan is already near-optimal on smooth profiles — the ULBA effect
// does not hinge on cutting quality.)
//
// Both sweeps live in the shared cli::sweep layer, so this harness drives
// the same implementation as `ulba_cli erosion --partitioner` — and the
// end-to-end pass steps through the sharded domain (4 shards), doubling as
// a partition-invariance exercise on the full app path.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

int main() {
  using namespace ulba;
  bench::print_header(
      "Ablation E-X5 — stripe cutting quality: greedy scan vs. RCB vs. "
      "exact optimum",
      "extends Boulmier et al. §IV-B (the paper's centralized stripe "
      "technique)");

  const std::vector<std::string> names{"greedy", "rcb", "optimal"};

  // Part 1: cutting quality on evolved erosion column-weight profiles.
  std::printf("\nBottleneck ratio max_p(load_p / target_p / Wtot) on erosion "
              "profiles\n(32 PEs, 1 strong rock, profile sampled every 30 "
              "iterations; 1.0 = ideal):\n\n");
  const auto quality_rows =
      bench::partitioner_quality_sweep(names, 32, 5, 30, 99);
  std::vector<std::string> headers{"iteration"};
  for (const std::string& n : names) headers.push_back(n);
  support::Table quality(headers);
  std::vector<double> greedy_gaps;
  for (const auto& row : quality_rows) {
    std::vector<std::string> cells{std::to_string(row.iteration)};
    for (const double r : row.ratios)
      cells.push_back(support::Table::num(r, 5));
    quality.add_row(cells);
    greedy_gaps.push_back(row.ratios[0] / row.ratios[2] - 1.0);
  }
  std::printf("%s\n", quality.render(2).c_str());

  // Part 2: end-to-end effect on the Figure-4a comparison (64 PEs, 1 rock),
  // stepped through 4 host shards cut by the partitioner under test.
  const std::vector<std::uint64_t> seeds{11, 22, 33};
  const auto e2e_rows = bench::partitioner_end_to_end(names, 64, 1, seeds, 4);
  support::Table e2e({"partitioner", "standard [s]", "ULBA [s]", "ULBA gain"});
  for (const auto& row : e2e_rows) {
    e2e.add_row({row.name, support::Table::num(row.median_standard, 3),
                 support::Table::num(row.median_ulba, 3),
                 support::Table::pct((row.median_standard - row.median_ulba) /
                                         row.median_standard,
                                     1)});
  }
  std::printf("End-to-end erosion run (64 PEs, 1 strong rock, 4 shards, "
              "median of %zu seeds):\n\n%s\n",
              seeds.size(), e2e.render(2).c_str());

  const double greedy_gap = support::max_of(greedy_gaps);
  std::printf("  greedy scan within %.2f%% of the optimal cut (max over "
              "snapshots)\n",
              greedy_gap * 100.0);
  const bool ok = greedy_gap < 0.05;
  std::printf("\n  verdict: %s (the paper's technique is near-optimal on "
              "this workload)\n",
              ok ? "CONFIRMED" : "MISMATCH");
  return ok ? 0 : 1;
}
