// E-X5 (extension) — partitioner ablation: the paper's greedy stripe scan
// vs. 1-D recursive bisection vs. the exact min–max(load/target) optimum.
//
// Two questions: (a) how far from optimal is the paper's cutting technique
// on the erosion workload's column-weight profiles, and (b) does a better
// cut change the end-to-end standard-vs-ULBA comparison? (Spoiler: the
// greedy scan is already near-optimal on smooth profiles — the ULBA effect
// does not hinge on cutting quality.)
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "erosion/domain.hpp"
#include "lb/partitioners.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

int main() {
  using namespace ulba;
  bench::print_header(
      "Ablation E-X5 — stripe cutting quality: greedy scan vs. RCB vs. "
      "exact optimum",
      "extends Boulmier et al. §IV-B (the paper's centralized stripe "
      "technique)");

  // Part 1: cutting quality on evolved erosion column-weight profiles.
  std::printf("\nBottleneck ratio max_p(load_p / target_p / Wtot) on erosion "
              "profiles\n(32 PEs, 1 strong rock, profile sampled every 30 "
              "iterations; 1.0 = ideal):\n\n");
  erosion::DomainConfig dcfg;
  dcfg.columns = 32 * 256;
  dcfg.rows = 384;
  for (int i = 0; i < 32; ++i)
    dcfg.discs.push_back(
        erosion::RockDisc{128 + 256 * i, 192, 96, i == 7 ? 0.4 : 0.02});
  erosion::ErosionDomain domain(dcfg);
  support::Rng rng(99);

  const std::vector<double> targets(32, 1.0 / 32.0);
  support::Table quality(
      {"iteration", "greedy-scan", "rcb", "optimal-ratio"});
  std::vector<double> greedy_gaps, rcb_gaps;
  for (int snapshot = 0; snapshot <= 5; ++snapshot) {
    const auto w = domain.column_weights();
    const double r_greedy = lb::bottleneck_ratio(
        w, targets, lb::GreedyScanPartitioner{}.partition(w, targets));
    const double r_rcb = lb::bottleneck_ratio(
        w, targets, lb::RcbPartitioner{}.partition(w, targets));
    const double r_opt = lb::bottleneck_ratio(
        w, targets, lb::OptimalRatioPartitioner{}.partition(w, targets));
    quality.add_row({std::to_string(snapshot * 30),
                     support::Table::num(r_greedy, 5),
                     support::Table::num(r_rcb, 5),
                     support::Table::num(r_opt, 5)});
    greedy_gaps.push_back(r_greedy / r_opt - 1.0);
    rcb_gaps.push_back(r_rcb / r_opt - 1.0);
    for (int it = 0; it < 30; ++it) (void)domain.step(rng);
  }
  std::printf("%s\n", quality.render(2).c_str());

  // Part 2: end-to-end effect on the Figure-4a comparison (64 PEs, 1 rock).
  const std::vector<const char*> names{"greedy-scan", "rcb", "optimal-ratio"};
  const std::vector<std::uint64_t> seeds{11, 22, 33};
  struct Case {
    std::size_t name_idx;
    erosion::Method method;
    std::uint64_t seed;
  };
  std::vector<Case> cases;
  for (std::size_t ni = 0; ni < names.size(); ++ni)
    for (auto m : {erosion::Method::kStandard, erosion::Method::kUlba})
      for (auto s : seeds) cases.push_back({ni, m, s});
  const auto results = bench::parallel_map(cases.size(), [&](std::size_t i) {
    auto cfg = bench::scaled_app_config(64, 1, cases[i].method,
                                        cases[i].seed);
    cfg.partitioner = names[cases[i].name_idx];
    return erosion::ErosionApp(cfg).run().total_seconds;
  });

  support::Table e2e({"partitioner", "standard [s]", "ULBA [s]", "ULBA gain"});
  for (std::size_t ni = 0; ni < names.size(); ++ni) {
    std::vector<double> t_std, t_ulba;
    for (std::size_t i = 0; i < cases.size(); ++i) {
      if (cases[i].name_idx != ni) continue;
      (cases[i].method == erosion::Method::kStandard ? t_std : t_ulba)
          .push_back(results[i]);
    }
    const double ms = support::median(t_std), mu = support::median(t_ulba);
    e2e.add_row({names[ni], support::Table::num(ms, 3),
                 support::Table::num(mu, 3),
                 support::Table::pct((ms - mu) / ms, 1)});
  }
  std::printf("End-to-end erosion run (64 PEs, 1 strong rock, median of %zu "
              "seeds):\n\n%s\n",
              seeds.size(), e2e.render(2).c_str());

  const double greedy_gap = support::max_of(greedy_gaps);
  std::printf("  greedy scan within %.2f%% of the optimal cut (max over "
              "snapshots)\n",
              greedy_gap * 100.0);
  const bool ok = greedy_gap < 0.05;
  std::printf("\n  verdict: %s (the paper's technique is near-optimal on "
              "this workload)\n",
              ok ? "CONFIRMED" : "MISMATCH");
  return ok ? 0 : 1;
}
