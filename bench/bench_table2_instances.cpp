// E-T2 — Table II: random application-parameter distributions.
//
// Samples 10 000 instances from the Table-II generator and verifies every
// parameter obeys its distribution: support bounds, the ΔW = aP + mN
// identity, and the summary statistics of each raw draw. This is the
// reproduction of the paper's Table II (a specification table — the "result"
// is that the sampler matches it).
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/instance.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

int main() {
  using namespace ulba;
  bench::print_header(
      "Table II — random application parameter distributions",
      "Boulmier et al., CLUSTER'19, Table II (used by Figs. 2 and 3)");

  constexpr int kSamples = 10000;
  support::Rng rng(20190916);  // the paper's arXiv date as seed
  const core::InstanceGenerator gen;

  std::vector<double> v, x, y, z, alpha, n_over_p, c_over_iter;
  std::vector<double> w0_per_pe;
  std::size_t identity_violations = 0;
  std::size_t bound_violations = 0;

  for (int i = 0; i < kSamples; ++i) {
    const core::Instance inst = gen.sample(rng);
    const core::ModelParams& p = inst.params;
    const auto pd = static_cast<double>(p.P);

    v.push_back(inst.v);
    x.push_back(inst.x);
    y.push_back(inst.y);
    z.push_back(inst.z);
    alpha.push_back(p.alpha);
    n_over_p.push_back(static_cast<double>(p.N) / pd);
    w0_per_pe.push_back(p.w0 / pd);
    // C relative to one iteration's compute time (z by construction).
    c_over_iter.push_back(p.lb_cost / ((p.w0 / pd) / p.omega));

    const double dw_expected = (p.w0 / pd) * inst.x;
    if (std::abs(p.delta_w() - dw_expected) > 1e-6 * dw_expected)
      ++identity_violations;
    if (p.w0 < 52e7 * pd || p.w0 >= 1165e7 * pd || p.N < 1 || p.N >= p.P)
      ++bound_violations;
  }

  support::Table table({"draw", "distribution (Table II)", "min", "mean",
                        "max", "in-range"});
  const auto row = [&](const char* name, const char* dist,
                       const std::vector<double>& xs, double lo, double hi) {
    const auto s = support::summarize(xs);
    const bool ok = s.min >= lo && s.max <= hi;
    table.add_row({name, dist, support::Table::num(s.min, 4),
                   support::Table::num(s.mean, 4),
                   support::Table::num(s.max, 4), ok ? "yes" : "NO"});
  };
  row("v  (N = P*v)", "U(0.01, 0.2)", v, 0.01, 0.2);
  row("x  (dW frac)", "U(0.01, 0.3)", x, 0.01, 0.3);
  row("y  (m share)", "U(0.8, 1.0)", y, 0.8, 1.0);
  row("alpha", "U(0.0, 1.0)", alpha, 0.0, 1.0);
  row("z  (C frac)", "U(0.1, 3.0)", z, 0.1, 3.0);
  row("N/P", "~U(0.01,0.2)", n_over_p, 0.0, 0.21);
  row("C / iter-time", "= z", c_over_iter, 0.1, 3.0);
  row("W0/P  [GFLOP]", "U(0.52, 11.65)e9",
      [&] {
        std::vector<double> g;
        g.reserve(w0_per_pe.size());
        for (double w : w0_per_pe) g.push_back(w / 1e9);
        return g;
      }(),
      0.52, 11.65);
  std::printf("%s\n", table.render(2).c_str());

  std::printf("  samples                       : %d\n", kSamples);
  std::printf("  dW = a*P + m*N violations     : %zu\n", identity_violations);
  std::printf("  support-bound violations      : %zu\n", bound_violations);

  // Per-family ULBA-vs-standard statistics — the same shared sweep behind
  // `ulba_cli instances` (best-alpha gains can never be negative since the
  // alpha = 0 fallback degenerates to the standard method).
  std::printf("\nULBA vs standard per PE family (200 instances each, shared "
              "sweep):\n\n");
  support::Table families({"P", "wins", "losses", "median gain",
                           "best-alpha gain", "avg best-alpha"});
  bool best_alpha_never_loses = true;
  for (const std::int64_t p : core::kTableIIPeCounts) {
    const auto s = bench::instance_family_stats(p, 200, 20190916, 20);
    if (s.median_best_gain < 0.0) best_alpha_never_loses = false;
    families.add_row({std::to_string(s.pin_p), std::to_string(s.wins),
                      std::to_string(s.losses),
                      support::Table::pct(s.median_gain, 2),
                      support::Table::pct(s.median_best_gain, 2),
                      support::Table::num(s.mean_best_alpha, 2)});
  }
  std::printf("%s\n", families.render(2).c_str());

  const bool ok = identity_violations == 0 && bound_violations == 0 &&
                  best_alpha_never_loses;
  std::printf("  verdict                       : %s\n",
              ok ? "TABLE II REPRODUCED" : "MISMATCH");
  return ok ? 0 : 1;
}
