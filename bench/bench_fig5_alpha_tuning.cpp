// E-F5 — Figure 5: hyper-parameter tuning of α, 1 strongly erodible rock.
//
// Paper (Fig. 5): α ∈ [0.1, 0.5] on P ∈ {32, 64, 128, 256}; α strongly
// impacts performance (up to ~14 %); no significant gain above α = 0.4
// except at 256 PEs, where α = 0.5 still improves by ~1.4 %.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"
#include "support/text_plot.hpp"

int main() {
  using namespace ulba;
  bench::print_header(
      "Figure 5 — ULBA performance vs. alpha, 1 strongly erodible rock",
      "Boulmier et al., CLUSTER'19, Fig. 5: strong alpha effect (~14%), "
      "plateau above alpha=0.4 except P=256");

  const std::vector<std::int64_t> pe_counts{32, 64, 128, 256};
  const std::vector<double> alphas{0.10, 0.15, 0.20, 0.25, 0.30,
                                   0.35, 0.40, 0.45, 0.50};
  const std::vector<std::uint64_t> seeds{11, 22, 33};

  struct Case {
    std::int64_t pe_count;
    double alpha;
    std::uint64_t seed;
  };
  std::vector<Case> cases;
  for (std::int64_t p : pe_counts)
    for (double a : alphas)
      for (auto s : seeds) cases.push_back({p, a, s});

  const auto results = bench::parallel_map(cases.size(), [&](std::size_t i) {
    auto cfg = bench::scaled_app_config(cases[i].pe_count, 1,
                                        erosion::Method::kUlba,
                                        cases[i].seed);
    cfg.alpha = cases[i].alpha;
    return erosion::ErosionApp(cfg).run().total_seconds;
  });

  const auto median_time = [&](std::int64_t p, double a) {
    std::vector<double> times;
    for (std::size_t i = 0; i < cases.size(); ++i)
      if (cases[i].pe_count == p && cases[i].alpha == a)
        times.push_back(results[i]);
    return support::median(times);
  };

  std::vector<std::string> headers{"alpha"};
  for (std::int64_t p : pe_counts) headers.push_back(std::to_string(p) + " PEs");
  support::Table table(headers);
  std::vector<support::Series> series;
  for (std::int64_t p : pe_counts)
    series.push_back({std::to_string(p) + "PE", {}});

  for (double a : alphas) {
    std::vector<std::string> row{support::Table::num(a, 2)};
    for (std::size_t pi = 0; pi < pe_counts.size(); ++pi) {
      const double t = median_time(pe_counts[pi], a);
      row.push_back(support::Table::num(t, 3));
      series[pi].y.push_back(t);
    }
    table.add_row(row);
  }
  std::printf("\nMedian total time [virtual s] over %zu seeds:\n\n",
              seeds.size());
  std::printf("%s\n", table.render(2).c_str());
  std::printf("%s\n", support::plot_series(series, 90, 16).c_str());

  // Shape checks, scaled to this substrate's compressed effect size (our
  // end-to-end ULBA gains are ~3–4% where the paper reports up to 16%, so
  // the α effect scales down proportionally — see EXPERIMENTS.md):
  //   1. α materially changes performance for every P (under-anticipation
  //      with α = 0.1 is measurably suboptimal);
  //   2. past the knee, a plateau: the spread over α ∈ [0.2, 0.5] stays well
  //      below the improvement from α = 0.1 to the knee.
  bool strong_effect = true;
  bool plateau_ok = true;
  for (std::size_t pi = 0; pi < pe_counts.size(); ++pi) {
    const std::span<const double> y(series[pi].y);
    const double t_low = y.front();  // α = 0.10
    const double best = support::min_of(y);
    const double knee_gain = (t_low - best) / t_low;
    if (knee_gain < 0.01) strong_effect = false;
    const double plateau_spread =
        (support::max_of(y.subspan(2)) - support::min_of(y.subspan(2))) /
        best;  // α ∈ [0.20, 0.50]
    if (plateau_spread > 2.5 * std::max(knee_gain, 0.005)) plateau_ok = false;
    // Report the measured optimum for the EXPERIMENTS.md record.
    std::size_t best_i = 0;
    for (std::size_t i = 0; i < y.size(); ++i)
      if (y[i] == best) best_i = i;
    std::printf("  P=%4lld: knee gain %.1f%% (alpha 0.1 -> best), optimum "
                "alpha ~%.2f (paper: ~0.4-0.5)\n",
                static_cast<long long>(pe_counts[pi]), knee_gain * 100.0,
                alphas[best_i]);
  }

  std::printf("\n  alpha materially changes performance : %s (paper: up to "
              "14%%; ours compressed ~5x like all Fig.4/5 magnitudes)\n",
              strong_effect ? "yes" : "NO");
  std::printf("  plateau past the knee                : %s (paper: plateau "
              "above 0.4)\n",
              plateau_ok ? "yes" : "NO");
  const bool ok = strong_effect && plateau_ok;
  std::printf("\n  verdict: %s\n",
              ok ? "SHAPE REPRODUCED" : "SHAPE MISMATCH");
  return ok ? 0 : 1;
}
