// Distributed-erosion scaling — the erosion workload over the SPMD runtime
// (erosion::DistributedDomain through `ErosionApp` with AppConfig::ranks),
// swept over rank counts × partitioners.
//
// Two claims are on trial:
//   (a) determinism — every cell's RunResult must be BIT-identical to the
//       in-process reference (the distributed partition-invariance
//       contract, here exercised on the full app path: monitoring, gossip,
//       adaptive trigger, Algorithm-2 LB, and the per-LB-step stripe recut
//       with real column/disc migration messages);
//   (b) the migration accounting — real payload bytes on the wire per recut
//       — scales with the rank count, giving the Eq.-C cost term of
//       Boulmier et al. a measured, message-level counterpart (cf. the
//       two-level distributed LB design of Mohammed et al., 1911.06714).
//
// The sweep lives in the shared cli::sweep layer, so this harness drives
// the same implementation as `ulba_cli erosion --ranks`.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "support/table.hpp"

int main() {
  using namespace ulba;
  bench::print_header(
      "Distributed erosion — SPMD ranks, real halo/migration messages",
      "extends Boulmier et al. SectionIV-B beyond one address space "
      "(ROADMAP: distribute the sharded domain)");

  const std::vector<std::int64_t> rank_counts{1, 2, 4, 8};
  const std::vector<std::string> partitioners{"greedy", "rcb", "optimal",
                                              "stripe"};
  const std::vector<std::string> exchanges{"alltoall", "neighbor"};
  std::printf("\n32 PEs, 1 strong rock, 120 iterations, ULBA alpha 0.4; "
              "every cell vs. the\nin-process reference "
              "(matches = bit-identical RunResult):\n\n");

  const auto rows = bench::distributed_erosion_scaling(
      rank_counts, partitioners, exchanges, /*pe_count=*/32,
      /*strong_rocks=*/1, /*seed=*/11, /*iterations=*/120);

  support::Table table({"partitioner", "exchange", "ranks", "wall [s]",
                        "virtual [s]", "LB calls", "disc moves", "wire [MB]",
                        "step msgs", "matches"});
  bool all_match = true;
  bool neighbor_cheaper = true;
  for (const auto& row : rows) {
    all_match &= row.matches_serial != 0;
    table.add_row({row.partitioner, row.exchange, std::to_string(row.ranks),
                   support::Table::num(row.wall_seconds, 3),
                   support::Table::num(row.virtual_seconds, 3),
                   std::to_string(row.lb_count),
                   std::to_string(row.discs_moved),
                   support::Table::num(row.observed_mb, 4),
                   std::to_string(row.step_messages),
                   row.matches_serial != 0 ? "yes" : "NO"});
  }
  // Cross-check the tentpole claim cell by cell: for every (partitioner,
  // ranks >= 4) the neighbor exchange must send fewer step messages.
  for (const auto& a : rows) {
    if (a.exchange != "alltoall" || a.ranks < 4) continue;
    for (const auto& n : rows)
      if (n.exchange == "neighbor" && n.partitioner == a.partitioner &&
          n.ranks == a.ranks)
        neighbor_cheaper &= n.step_messages < a.step_messages;
  }
  std::printf("%s\n", table.render(2).c_str());

  std::printf("  (wall clock is host time for the whole standard run — the "
              "SPMD ranks are\n   threads here, so scaling is bounded by "
              "the machine's cores; the virtual\n   seconds and the LB "
              "schedule are rank- and exchange-invariant by "
              "construction)\n");

  // Decomposition comparison: 1D stripes vs. the 2D tile grid, static and
  // periodically rebalanced, plus the damped boundary tuner. The tuner must
  // (a) keep the trajectory bit-identical (it only moves tile boundaries)
  // and (b) end with less per-rank weight imbalance than the static grid.
  std::printf("\nDecomposition comparison — 4 ranks, periodic rebalance, "
              "counter RNG; the\ndamped tuner vs. a fresh per-dimension "
              "recut vs. no rebalance at all:\n\n");
  const auto grid_rows = bench::grid_decomposition_sweep(
      /*ranks=*/4, /*pe_count=*/32, /*strong_rocks=*/1, /*seed=*/11,
      /*iterations=*/120);
  support::Table grid_table({"decomp", "policy", "shape", "ranks",
                             "imbalance", "tuner passes", "LB calls",
                             "disc moves", "matches"});
  bool grid_match = true;
  double static_grid_imbalance = -1.0;
  double tuner_imbalance = -1.0;
  std::int64_t tuner_passes = 0;
  for (const auto& row : grid_rows) {
    grid_match &= row.matches_serial != 0;
    if (row.decomp == "grid" && row.policy == "static")
      static_grid_imbalance = row.imbalance;
    if (row.policy == "tuner") {
      tuner_imbalance = row.imbalance;
      tuner_passes = row.tuner_iterations;
    }
    grid_table.add_row({row.decomp, row.policy, row.shape,
                        std::to_string(row.ranks),
                        support::Table::num(row.imbalance, 4),
                        std::to_string(row.tuner_iterations),
                        std::to_string(row.lb_count),
                        std::to_string(row.discs_moved),
                        row.matches_serial != 0 ? "yes" : "NO"});
  }
  const bool tuner_improves =
      tuner_passes > 0 && tuner_imbalance < static_grid_imbalance;
  std::printf("%s\n", grid_table.render(2).c_str());

  std::printf("\n  verdict: %s; %s; %s; %s\n",
              all_match
                  ? "DETERMINISM HOLDS (every rank count bit-matches the "
                    "in-process run)"
                  : "DETERMINISM VIOLATED",
              neighbor_cheaper
                  ? "neighbor exchange strictly cheaper for R >= 4"
                  : "NEIGHBOR EXCHANGE NOT CHEAPER (regression)",
              grid_match
                  ? "2D grid bit-matches the serial trajectory"
                  : "2D GRID TRAJECTORY DIVERGED",
              tuner_improves
                  ? "damped tuner beats the static grid's imbalance"
                  : "TUNER DID NOT IMPROVE IMBALANCE (regression)");
  return all_match && neighbor_cheaper && grid_match && tuner_improves ? 0
                                                                       : 1;
}
