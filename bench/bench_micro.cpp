// Microbenchmarks of the hot primitives (google-benchmark).
//
// These are engineering benchmarks, not paper artifacts: they document the
// cost of the building blocks the experiment harness leans on (closed-form
// schedule evaluation, σ⁺ computation, stripe partitioning, gossip rounds,
// annealing steps, DP optimization, erosion steps).
#include <benchmark/benchmark.h>

#include <cstdint>
#include <optional>

#include "core/gossip.hpp"
#include "core/instance.hpp"
#include "core/intervals.hpp"
#include "core/policy.hpp"
#include "core/schedule.hpp"
#include "erosion/distributed_domain.hpp"
#include "erosion/domain.hpp"
#include "erosion/sharded_domain.hpp"
#include "lb/partitioners.hpp"
#include "lb/stripe_partitioner.hpp"
#include "opt/dp_alpha.hpp"
#include "opt/dp_optimal.hpp"
#include "opt/schedule_problem.hpp"
#include "runtime/spmd.hpp"
#include "support/counter_rng.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"

namespace {

using namespace ulba;

core::ModelParams bench_params() {
  support::Rng rng(1);
  const core::InstanceGenerator gen;
  return gen.sample(rng).params;
}

void BM_ScheduleEvaluateUlba(benchmark::State& state) {
  const core::ModelParams p = bench_params();
  const core::Schedule s = core::sigma_plus_schedule(p);
  for (auto _ : state)
    benchmark::DoNotOptimize(core::evaluate_ulba(p, s).total_seconds);
}
BENCHMARK(BM_ScheduleEvaluateUlba);

void BM_SigmaPlusSchedule(benchmark::State& state) {
  const core::ModelParams p = bench_params();
  for (auto _ : state)
    benchmark::DoNotOptimize(core::sigma_plus_schedule(p).lb_count());
}
BENCHMARK(BM_SigmaPlusSchedule);

void BM_MenonTau(benchmark::State& state) {
  const core::ModelParams p = bench_params();
  for (auto _ : state) benchmark::DoNotOptimize(core::menon_tau(p));
}
BENCHMARK(BM_MenonTau);

void BM_DpOptimal(benchmark::State& state) {
  const core::ModelParams p = bench_params();
  for (auto _ : state)
    benchmark::DoNotOptimize(
        opt::optimal_schedule(p, opt::CostModel::kUlba).total_seconds);
}
BENCHMARK(BM_DpOptimal);

void BM_AnnealSchedule(benchmark::State& state) {
  const core::ModelParams p = bench_params();
  const auto steps = state.range(0);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    support::Rng rng(++seed);
    benchmark::DoNotOptimize(
        opt::anneal_schedule(p, opt::CostModel::kUlba, rng, steps)
            .total_seconds);
  }
}
BENCHMARK(BM_AnnealSchedule)->Arg(1000)->Arg(10000);

void BM_ComputeLbWeights(benchmark::State& state) {
  const auto pe_count = static_cast<std::size_t>(state.range(0));
  std::vector<double> alphas(pe_count, 0.0);
  for (std::size_t i = 0; i < pe_count / 10 + 1; ++i) alphas[i] = 0.4;
  for (auto _ : state)
    benchmark::DoNotOptimize(core::compute_lb_weights(alphas, 1e12).weights);
}
BENCHMARK(BM_ComputeLbWeights)->Arg(64)->Arg(2048);

void BM_StripePartition(benchmark::State& state) {
  const auto columns = static_cast<std::size_t>(state.range(0));
  support::Rng rng(2);
  std::vector<double> weights(columns);
  for (double& w : weights) w = rng.uniform(1.0, 3.0);
  const std::vector<double> fractions(64, 1.0 / 64.0);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        lb::partition_by_weight(weights, fractions).back());
}
BENCHMARK(BM_StripePartition)->Arg(16384)->Arg(262144);

void BM_GossipRound(benchmark::State& state) {
  const auto pe_count = state.range(0);
  core::GossipNetwork net(pe_count, 2);
  for (std::int64_t pe = 0; pe < pe_count; ++pe)
    net.observe_local(pe, 1.0, 0);
  support::Rng rng(3);
  for (auto _ : state) net.step(rng);
}
BENCHMARK(BM_GossipRound)->Arg(64)->Arg(256);

/// The shared erosion workload of the stepper benchmarks: 16 discs on a
/// 4096x256 field, one strongly erodible.
erosion::DomainConfig bench_erosion_config() {
  erosion::DomainConfig cfg;
  cfg.columns = 4096;
  cfg.rows = 256;
  for (int i = 0; i < 16; ++i)
    cfg.discs.push_back(
        erosion::RockDisc{128 + 256 * i, 128, 64, i == 0 ? 0.4 : 0.02});
  return cfg;
}

void BM_ErosionStep(benchmark::State& state) {
  erosion::ErosionDomain domain(bench_erosion_config());
  support::Rng rng(4);
  for (auto _ : state) benchmark::DoNotOptimize(domain.step(rng));
}
BENCHMARK(BM_ErosionStep);

/// One Philox draw through the counter RNG — the per-cell cost floor of the
/// counter stepper's decide pass.
void BM_CounterRngDraw(benchmark::State& state) {
  const support::CounterRng rng(4, 7);
  std::uint64_t cell = 0;
  for (auto _ : state)
    benchmark::DoNotOptimize(rng.uniform01(11, ++cell));
}
BENCHMARK(BM_CounterRngDraw);

// The fork-vs-counter pair below is the perf-gated comparison: identical
// workload, identical reset cadence (erosion decays the frontier, so an
// ever-evolving domain would measure a shrinking problem — both benches
// rebuild the domain every 48 steps, outside the timed region). The ratio
// BM_ErosionStepFork/BM_ErosionStepCounter/1 is gated at >= 1.5x, and
// .../8 at >= 6x on machines with >= 8 CPUs (see bench/baselines).
constexpr int kStepsPerEpoch = 48;

void BM_ErosionStepFork(benchmark::State& state) {
  erosion::ErosionDomain domain(bench_erosion_config());
  support::Rng rng(4);
  int steps = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(domain.step(rng));
    if (++steps == kStepsPerEpoch) {
      state.PauseTiming();
      domain = erosion::ErosionDomain(bench_erosion_config());
      rng = support::Rng(4);
      steps = 0;
      state.ResumeTiming();
    }
  }
}
// Real time, not cpu_time: the counter benchmarks hand work to a pool, and
// the main thread's CPU clock would miss it. Fork uses the same clock so
// the fork/counter ratios compare like with like.
BENCHMARK(BM_ErosionStepFork)->UseRealTime();

void BM_ErosionStepCounter(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  std::optional<support::ThreadPool> pool;
  if (threads > 1) pool.emplace(threads);
  erosion::ErosionDomain domain(bench_erosion_config());
  std::int64_t iter = 0;
  int steps = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        domain.step_counter(4, iter++, pool ? &*pool : nullptr));
    if (++steps == kStepsPerEpoch) {
      state.PauseTiming();
      domain = erosion::ErosionDomain(bench_erosion_config());
      iter = 0;
      steps = 0;
      state.ResumeTiming();
    }
  }
}
BENCHMARK(BM_ErosionStepCounter)->Arg(1)->Arg(8)->UseRealTime();

void BM_ShardedErosionStep(benchmark::State& state) {
  erosion::DomainConfig cfg = bench_erosion_config();
  erosion::ShardedDomain domain(
      cfg, state.range(0),
      std::shared_ptr<const lb::Partitioner>(lb::make_partitioner("greedy")));
  // A pool of 1 (the serial reference path) isolates the sharding
  // discipline's overhead — stream split, per-shard decide/apply, ordered
  // commit — from scheduler noise; multi-thread scaling is covered
  // functionally by test_sharded_erosion and is too run-to-run noisy on
  // shared CI runners to perf-gate.
  support::ThreadPool pool(1);
  support::Rng rng(4);
  for (auto _ : state) benchmark::DoNotOptimize(domain.step(rng, pool));
}
BENCHMARK(BM_ShardedErosionStep)->Arg(1)->Arg(4);

void BM_DistributedErosionStep(benchmark::State& state) {
  // One measured unit = an 8-step SPMD run over 4 ranks (construction
  // included — spawning the world is part of what the exchange mode must
  // amortize). Arg 0 = the all-to-all reference, Arg 1 = neighbor-aware;
  // the pair documents what the neighbor exchange buys per step.
  const auto mode = state.range(0) == 0 ? erosion::ExchangeMode::kAllToAll
                                        : erosion::ExchangeMode::kNeighbor;
  erosion::DomainConfig cfg;
  cfg.columns = 16 * 48;
  cfg.rows = 64;
  for (int i = 0; i < 16; ++i)
    cfg.discs.push_back(
        erosion::RockDisc{24 + 48 * i, 32, 16, i == 7 ? 0.4 : 0.02});
  for (auto _ : state) {
    std::int64_t eroded = 0;
    runtime::spmd_run(4, [&](runtime::Comm& comm) {
      erosion::DistributedDomain domain(
          cfg, comm,
          std::shared_ptr<const lb::Partitioner>(
              lb::make_partitioner("greedy")),
          mode);
      support::Rng rng(4);
      std::int64_t total = 0;
      for (int s = 0; s < 8; ++s) total += domain.step(rng);
      if (comm.rank() == 0) eroded = total;
    });
    benchmark::DoNotOptimize(eroded);
  }
}
BENCHMARK(BM_DistributedErosionStep)->Arg(0)->Arg(1);

void BM_OptimalRatioPartition(benchmark::State& state) {
  const auto columns = static_cast<std::size_t>(state.range(0));
  support::Rng rng(5);
  std::vector<double> weights(columns);
  for (double& w : weights) w = rng.uniform(1.0, 3.0);
  const std::vector<double> fractions(64, 1.0 / 64.0);
  const lb::OptimalRatioPartitioner part;
  for (auto _ : state)
    benchmark::DoNotOptimize(part.partition(weights, fractions).back());
}
BENCHMARK(BM_OptimalRatioPartition)->Arg(16384)->Arg(262144);

void BM_DpAlphaSchedule(benchmark::State& state) {
  const core::ModelParams p = bench_params();
  for (auto _ : state)
    benchmark::DoNotOptimize(opt::optimal_alpha_schedule(p).total_seconds);
}
BENCHMARK(BM_DpAlphaSchedule);

void BM_StripeLoads(benchmark::State& state) {
  const auto columns = static_cast<std::size_t>(state.range(0));
  std::vector<double> weights(columns, 1.0);
  const auto b = lb::even_partition(static_cast<std::int64_t>(columns), 64);
  for (auto _ : state)
    benchmark::DoNotOptimize(lb::stripe_loads(weights, b).front());
}
BENCHMARK(BM_StripeLoads)->Arg(16384)->Arg(262144);

}  // namespace
