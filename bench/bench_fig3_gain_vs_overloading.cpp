// E-F3 — Figure 3: theoretical performance gain of ULBA over the standard
// LB method versus the percentage of overloading PEs.
//
// Paper (Fig. 3): box plots over 1000 instances per percentage point
// {1.0, 1.6, 2.4, 3.4, 4.8, 6.5, 8.7, 11.5, 15.2, 20.0}%, 100 α values per
// instance keeping the best. ULBA is never worse, gains reach ≈21 %, and
// both the gain and the best α shrink as the overloading fraction grows.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/instance.hpp"
#include "core/schedule.hpp"
#include "support/boxplot.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

int main() {
  using namespace ulba;
  bench::print_header(
      "Figure 3 — ULBA gain vs. percentage of overloading PEs",
      "Boulmier et al., CLUSTER'19, Fig. 3: gains up to ~21%, never "
      "negative; best-alpha decreases with %overloading");

  // The paper's ten log-spaced percentages.
  const std::vector<double> percentages{1.0, 1.6, 2.4,  3.4,  4.8,
                                        6.5, 8.7, 11.5, 15.2, 20.0};
  constexpr std::size_t kInstancesPerPoint = 1000;
  constexpr int kAlphaGrid = 100;

  support::Table table({"%overloading", "min", "q1", "median", "q3", "max",
                        "mean", "avg best-alpha"});
  std::vector<double> median_gain_per_point, avg_alpha_per_point;
  bool any_negative = false;
  double global_max_gain = 0.0;

  for (std::size_t pi = 0; pi < percentages.size(); ++pi) {
    const double pct = percentages[pi];
    struct PointSample {
      double gain = 0.0;
      double best_alpha = 0.0;
    };
    const auto samples = bench::parallel_map(
        kInstancesPerPoint, [&](std::size_t i) {
          support::Rng rng = support::Rng(3000 + pi).fork(i);
          core::InstanceOptions opts;
          opts.pin_overloading_fraction = pct / 100.0;
          const core::InstanceGenerator gen(opts);
          core::ModelParams p = gen.sample(rng).params;

          const double t_std =
              core::evaluate_standard(p, core::menon_schedule(p))
                  .total_seconds;

          PointSample s;
          double best = t_std;  // α = 0 fallback can never lose
          for (int a = 0; a <= kAlphaGrid; ++a) {
            p.alpha = static_cast<double>(a) / kAlphaGrid;
            const double t =
                p.alpha == 0.0
                    ? t_std
                    : core::evaluate_ulba(p, core::sigma_plus_schedule(p))
                          .total_seconds;
            if (t < best) {
              best = t;
              s.best_alpha = p.alpha;
            }
          }
          s.gain = (t_std - best) / t_std;
          return s;
        });

    std::vector<double> gains, alphas;
    for (const auto& s : samples) {
      gains.push_back(s.gain * 100.0);
      alphas.push_back(s.best_alpha);
      if (s.gain < -1e-9) any_negative = true;
      global_max_gain = std::max(global_max_gain, s.gain * 100.0);
    }
    const auto b = support::box_plot(gains);
    const double avg_alpha = support::mean(alphas);
    median_gain_per_point.push_back(b.median);
    avg_alpha_per_point.push_back(avg_alpha);

    table.add_row({support::Table::num(pct, 1) + "%",
                   support::Table::num(support::min_of(gains), 2),
                   support::Table::num(b.q1, 2),
                   support::Table::num(b.median, 2),
                   support::Table::num(b.q3, 2),
                   support::Table::num(support::max_of(gains), 2),
                   support::Table::num(b.mean, 2),
                   support::Table::num(avg_alpha, 2)});
  }

  std::printf("\nGain over the standard method [%%], %zu instances per "
              "point, %d alpha values each:\n\n",
              kInstancesPerPoint, kAlphaGrid + 1);
  std::printf("%s\n", table.render(2).c_str());

  std::printf("  box plots (axis 0%% .. 30%% gain):\n");
  for (std::size_t pi = 0; pi < percentages.size(); ++pi) {
    // Rebuild compact per-point render from the stored medians only when
    // needed; the table above carries the numbers.
    std::printf("   %5.1f%%  median %6.2f%%  avg alpha %4.2f\n",
                percentages[pi], median_gain_per_point[pi],
                avg_alpha_per_point[pi]);
  }

  // Shape checks mirroring the paper's reading of Figure 3.
  const bool never_negative = !any_negative;
  const bool gain_decreases =
      median_gain_per_point.front() > median_gain_per_point.back();
  const bool alpha_decreases =
      avg_alpha_per_point.front() > avg_alpha_per_point.back();
  const bool magnitude_ok = global_max_gain >= 10.0;

  std::printf("\n  ULBA never worse than standard : %s (paper: always)\n",
              never_negative ? "yes" : "NO");
  std::printf("  peak gain                      : %.1f%% (paper: ~21%%)\n",
              global_max_gain);
  std::printf("  gain decreases with %%overload  : %s (paper: yes)\n",
              gain_decreases ? "yes" : "NO");
  std::printf("  best-alpha decreases           : %s (paper: yes)\n",
              alpha_decreases ? "yes" : "NO");

  const bool ok =
      never_negative && gain_decreases && alpha_decreases && magnitude_ok;
  std::printf("\n  verdict: %s\n",
              ok ? "SHAPE REPRODUCED" : "SHAPE MISMATCH");
  return ok ? 0 : 1;
}
