// Anticipation vs. reaction — the paper's core claim put on real hardware.
//
// Boulmier et al. argue that ANTICIPATING load imbalance (the ULBA schedule,
// driven by the virtual-time model) beats REACTING to it. With the measured
// trigger source the reactive side is now a real contender: the standard LB
// method re-balancing when the measured degradation (Algorithm 1 on
// steady_clock iteration maxima) or the measured fractional load imbalance
// ((max-avg)/avg of gathered per-rank burn times, HemoCell-style) says so —
// the same loop the two-level DLB design of Mohammed et al. (1911.06714)
// closes. Injected multiplicative burn noise plays the multi-tenant
// interference the model cannot see.
//
// Wall-clock numbers are real and noisy, so this harness gates on STRUCTURE,
// not on who wins: every cell must complete, burn measurable time, and erode
// the exact same cells (the dynamics are LB-independent by construction).
// The win/loss table is the experiment's output, not its pass criterion.
//
// The sweep lives in the shared cli::sweep layer, so this harness drives the
// same implementation as `ulba_cli anticipation`.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "support/table.hpp"

int main() {
  using namespace ulba;
  bench::print_header(
      "Anticipation vs. reactive measured-trigger LB under burn noise",
      "Boulmier et al. core claim; reactive baseline after Mohammed et al., "
      "1911.06714");

  const std::int64_t ranks = 4;
  const std::int64_t iterations = 60;
  const std::vector<double> noise_levels{0.0, 0.2, 0.4};
  std::printf("\n%lld SPMD ranks, 8 PEs, %lld iterations, measured-time "
              "mode; per noise level:\nULBA + model trigger vs. standard + "
              "measured trigger (degradation, fli):\n\n",
              static_cast<long long>(ranks),
              static_cast<long long>(iterations));

  const auto rows = bench::anticipation_vs_reactive_sweep(
      ranks, /*pe_count=*/8, /*strong_rocks=*/1, /*seed=*/11, iterations,
      noise_levels, /*ns_scale=*/2.0, /*fli_threshold=*/0.25);

  support::Table table({"variant", "noise", "wall [s]", "compute [s]",
                        "LB [s]", "LB calls", "mean util", "mean fli"});
  bool structure_ok = rows.size() == noise_levels.size() * 3;
  const std::int64_t eroded = rows.empty() ? 0 : rows.front().eroded_cells;
  for (const auto& row : rows) {
    structure_ok &= row.wall_seconds > 0.0 && row.compute_seconds > 0.0;
    structure_ok &= row.mean_fli >= 0.0;
    structure_ok &= row.eroded_cells == eroded;  // dynamics LB-independent
    table.add_row({row.variant, support::Table::num(row.noise, 2),
                   support::Table::num(row.wall_seconds, 3),
                   support::Table::num(row.compute_seconds, 3),
                   support::Table::num(row.lb_seconds, 3),
                   std::to_string(row.lb_count),
                   support::Table::pct(row.utilization, 1),
                   support::Table::num(row.mean_fli, 3)});
  }
  std::printf("%s\n", table.render(2).c_str());

  // The experiment's output: anticipation's wall clock against the better
  // reactive variant, per noise level.
  std::printf("win/loss (anticipation vs. best reactive, measured wall "
              "clock):\n");
  std::int64_t wins = 0;
  for (std::size_t n = 0; structure_ok && n < noise_levels.size(); ++n) {
    const auto& ant = rows[n * 3];
    const auto& best =
        rows[n * 3 + 1].wall_seconds <= rows[n * 3 + 2].wall_seconds
            ? rows[n * 3 + 1]
            : rows[n * 3 + 2];
    const bool win = ant.wall_seconds < best.wall_seconds;
    wins += win ? 1 : 0;
    std::printf("  noise %.2f: %s  (%.3f s vs %.3f s %s)\n",
                noise_levels[n], win ? "WIN " : "LOSS", ant.wall_seconds,
                best.wall_seconds, best.variant.c_str());
  }
  std::printf("  anticipation wins %lld/%zu noise level(s)\n",
              static_cast<long long>(wins), noise_levels.size());

  std::printf("\n  verdict: %s\n",
              structure_ok
                  ? "SWEEP SOUND (all cells completed, measurable burns, "
                    "identical dynamics)"
                  : "SWEEP STRUCTURALLY BROKEN (regression)");
  return structure_ok ? 0 : 1;
}
