// E-X1 (extension) — interval-policy ablation on the analytic model.
//
// The paper validates σ⁺ against simulated annealing only. With the exact
// O(γ²) DP optimum available, this ablation ranks every interval policy on
// 200 Table-II instances: DP optimal ≤ SA ≤ σ⁺ ≤ fixed periods ≤ never.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/instance.hpp"
#include "core/schedule.hpp"
#include "opt/dp_optimal.hpp"
#include "opt/schedule_problem.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

int main() {
  using namespace ulba;
  bench::print_header(
      "Ablation E-X1 — LB interval policies vs. the exact DP optimum",
      "extends Boulmier et al. §III-B (paper compares sigma+ to simulated "
      "annealing only)");

  constexpr std::size_t kInstances = 200;

  struct Row {
    double sa, sigma, p10, p25, p50, never;  // gaps vs DP, in %
    std::size_t sigma_lb_count, dp_lb_count;
  };
  const auto rows = bench::parallel_map(kInstances, [&](std::size_t i) {
    support::Rng rng = support::Rng(777).fork(i);
    const core::InstanceGenerator gen;
    const core::ModelParams p = gen.sample(rng).params;
    const auto dp = opt::optimal_schedule(p, opt::CostModel::kUlba);
    support::Rng sa_rng = rng.fork(1);
    const auto sa =
        opt::anneal_schedule(p, opt::CostModel::kUlba, sa_rng, 15000);
    const auto eval = [&](const core::Schedule& s) {
      return core::evaluate_ulba(p, s).total_seconds;
    };
    const auto gap = [&](double t) {
      return (t / dp.total_seconds - 1.0) * 100.0;
    };
    const auto sigma = core::sigma_plus_schedule(p);
    Row r{};
    r.sa = gap(sa.total_seconds);
    r.sigma = gap(eval(sigma));
    r.p10 = gap(eval(core::periodic_schedule(p.gamma, 10)));
    r.p25 = gap(eval(core::periodic_schedule(p.gamma, 25)));
    r.p50 = gap(eval(core::periodic_schedule(p.gamma, 50)));
    r.never = gap(eval(core::Schedule::empty(p.gamma)));
    r.sigma_lb_count = sigma.lb_count();
    r.dp_lb_count = dp.schedule.lb_count();
    return r;
  });

  const auto column = [&](auto member) {
    std::vector<double> xs;
    xs.reserve(rows.size());
    for (const auto& r : rows) xs.push_back(r.*member);
    return xs;
  };

  support::Table table(
      {"policy", "mean gap vs optimal", "median", "q95", "max"});
  const auto add = [&](const char* name, const std::vector<double>& xs) {
    table.add_row({name,
                   support::Table::num(support::mean(xs), 2) + "%",
                   support::Table::num(support::median(xs), 2) + "%",
                   support::Table::num(support::quantile(xs, 0.95), 2) + "%",
                   support::Table::num(support::max_of(xs), 2) + "%"});
  };
  add("simulated annealing", column(&Row::sa));
  add("sigma+ (paper)", column(&Row::sigma));
  add("periodic, 10 it", column(&Row::p10));
  add("periodic, 25 it", column(&Row::p25));
  add("periodic, 50 it", column(&Row::p50));
  add("never (static)", column(&Row::never));

  std::printf("\nGap to the exact DP optimum over %zu Table-II instances "
              "(ULBA cost model):\n\n%s\n",
              kInstances, table.render(2).c_str());

  double sigma_vs_dp_calls = 0.0;
  for (const auto& r : rows)
    sigma_vs_dp_calls += static_cast<double>(r.sigma_lb_count) -
                         static_cast<double>(r.dp_lb_count);
  std::printf("  avg extra LB calls of sigma+ vs optimal: %+.2f\n",
              sigma_vs_dp_calls / static_cast<double>(rows.size()));

  const double sigma_mean = support::mean(column(&Row::sigma));
  const double p50_mean = support::mean(column(&Row::p50));
  const bool ok = sigma_mean >= 0.0 && sigma_mean < 10.0 &&
                  sigma_mean < p50_mean;
  std::printf("\n  verdict: %s (sigma+ near-optimal, beats naive periods)\n",
              ok ? "CONFIRMED" : "MISMATCH");
  return ok ? 0 : 1;
}
