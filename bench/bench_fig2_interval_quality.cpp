// E-F2 — Figure 2: quality of the σ⁺ LB intervals versus the heuristic
// search (simulated annealing), on 1000 random Table-II application
// instances.
//
// Paper (Fig. 2): gain of σ⁺ relative to the SA optimum — best +1.57 %,
// worst −5.58 %, average −0.83 %; i.e. σ⁺ is a good analytic stand-in for a
// numeric optimizer. We additionally report the exact DP optimum (an
// extension the paper lacked) to bound both methods.
//
// The sweep lives in the shared cli::sweep layer, so this harness drives
// the same implementation as `ulba_cli interval-quality` (which goldens a
// smaller configuration byte-for-byte).
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "support/histogram.hpp"
#include "support/stats.hpp"

int main() {
  using namespace ulba;
  bench::print_header(
      "Figure 2 — gain of the sigma+ intervals vs. the heuristic search",
      "Boulmier et al., CLUSTER'19, Fig. 2: best +1.57%, worst -5.58%, "
      "avg -0.83% over 1000 instances");

  constexpr std::size_t kInstances = 1000;
  constexpr std::int64_t kSaSteps = 20000;
  constexpr std::uint64_t kSeed = 1215;

  const auto samples =
      bench::interval_quality_sweep(kInstances, kSaSteps, kSeed);

  std::vector<double> gains, dp_gaps, sa_gaps;
  for (const auto& s : samples) {
    gains.push_back(s.gain_vs_sa * 100.0);
    dp_gaps.push_back(s.gap_vs_dp * 100.0);
    sa_gaps.push_back(s.sa_gap_vs_dp * 100.0);
  }

  std::printf(
      "\nGain histogram (sigma+ vs. heuristic search), %zu instances:\n\n",
      kInstances);
  const support::Histogram hist = support::Histogram::from_data(gains, 24);
  std::printf("%s\n", hist.render(46).c_str());

  const auto g = support::summarize(gains);
  std::printf("  best gain   : %+.2f%%   (paper: +1.57%%)\n", g.max);
  std::printf("  worst gain  : %+.2f%%   (paper: -5.58%%)\n", g.min);
  std::printf("  average gain: %+.2f%%   (paper: -0.83%%)\n", g.mean);

  std::printf("\nExtension — distance from the exact DP optimum:\n");
  std::printf("  sigma+ gap to optimal : mean %+.2f%%, max %+.2f%%\n",
              support::mean(dp_gaps), support::max_of(dp_gaps));
  std::printf("  SA gap to optimal     : mean %+.2f%%, max %+.2f%%\n",
              support::mean(sa_gaps), support::max_of(sa_gaps));

  const bool shape_ok = g.mean > -5.0 && g.mean < 2.0 && g.min > -25.0;
  std::printf("\n  verdict: %s\n",
              shape_ok ? "SHAPE REPRODUCED (sigma+ tracks the heuristic)"
                       : "SHAPE MISMATCH");
  return shape_ok ? 0 : 1;
}
