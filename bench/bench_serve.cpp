// Benchmarks of the schedule service (google-benchmark + a headline table).
//
// Two things live here. The BM_* microbenchmarks gate the service's core
// price list — cold evaluation per mode, the cache-hit path, and the
// request codec — and feed tools/perf_gate.py via baselines/bench_serve.json
// (the `serve_cache_hit_speedup` ratios entry is the ISSUE's ">= 10x on
// cache hit" acceptance floor, stated as a perf gate instead of a one-off
// measurement). Before the benchmarks run, main() prints the hit-rate /
// throughput headline table from one deterministic serve_traffic session —
// the number the README quotes.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <vector>

#include "cli/serve_driver.hpp"
#include "core/schedule_query.hpp"
#include "opt/evaluate.hpp"

namespace {

using namespace ulba;

std::vector<core::ScheduleRequest> bench_pool(core::EvalMode mode) {
  cli::ServeTrafficOptions options;
  options.distinct = 16;
  options.mode = mode;
  return cli::serve_traffic_pool(options);
}

void BM_ServeEvalColdGrid(benchmark::State& state) {
  const auto pool = bench_pool(core::EvalMode::kSigmaGrid);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        opt::evaluate_schedule_request(pool[i]).best_seconds);
    i = (i + 1) % pool.size();
  }
}
BENCHMARK(BM_ServeEvalColdGrid);

void BM_ServeEvalColdDp(benchmark::State& state) {
  const auto pool = bench_pool(core::EvalMode::kExactDp);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        opt::evaluate_schedule_request(pool[i]).best_seconds);
    i = (i + 1) % pool.size();
  }
}
BENCHMARK(BM_ServeEvalColdDp);

/// The serve_loop's hot path on a warm cache: serialize the request, look it
/// up, deserialize nothing (the stored response is returned by value).
void serve_cache_hit(benchmark::State& state, core::EvalMode mode) {
  const auto pool = bench_pool(mode);
  opt::ScheduleCache cache(4096, 8);
  std::vector<std::vector<std::byte>> keys;
  keys.reserve(pool.size());
  for (const auto& request : pool) {
    keys.push_back(core::serialize_request(request));
    (void)cache.evaluate_serialized(keys.back(), request);
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cache.evaluate_serialized(keys[i], pool[i]).best_seconds);
    i = (i + 1) % pool.size();
  }
}

void BM_ServeCacheHitGrid(benchmark::State& state) {
  serve_cache_hit(state, core::EvalMode::kSigmaGrid);
}
BENCHMARK(BM_ServeCacheHitGrid);

void BM_ServeCacheHitDp(benchmark::State& state) {
  serve_cache_hit(state, core::EvalMode::kExactDp);
}
BENCHMARK(BM_ServeCacheHitDp);

void BM_ServeRequestCodec(benchmark::State& state) {
  const auto pool = bench_pool(core::EvalMode::kSigmaGrid);
  std::size_t i = 0;
  for (auto _ : state) {
    const std::vector<std::byte> bytes = core::serialize_request(pool[i]);
    benchmark::DoNotOptimize(core::deserialize_request(bytes).params.P);
    i = (i + 1) % pool.size();
  }
}
BENCHMARK(BM_ServeRequestCodec);

/// Headline metrics: one deterministic multi-client session per mode.
void print_headline() {
  std::printf(
      "serve headline (4 clients x 256 requests, pool 16, batch 32):\n");
  std::printf("%-6s %10s %10s %8s %12s %6s\n", "mode", "requests", "hits",
              "hitrate", "req/s", "ok");
  for (const core::EvalMode mode :
       {core::EvalMode::kSigmaGrid, core::EvalMode::kExactDp}) {
    cli::ServeTrafficOptions options;
    options.mode = mode;
    const cli::ServeTrafficResult r = cli::serve_traffic(options);
    std::printf("%-6s %10lld %10lld %7.1f%% %12.0f %6s\n",
                mode == core::EvalMode::kExactDp ? "dp" : "grid",
                static_cast<long long>(r.metrics.requests),
                static_cast<long long>(r.metrics.cache_hits),
                100.0 * r.metrics.hit_rate(), r.requests_per_second,
                r.ok() ? "PASS" : "FAIL");
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  print_headline();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
