// E-F4b — Figure 4b: average PE utilization traces, 32 PEs, 1 strongly
// erodible rock.
//
// Paper (Fig. 4b): ULBA sustains higher average PE usage with fewer
// utilization drops, and issues 62.5 % fewer LB calls than the standard
// method (one of which, around iteration 315, is wasted).
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "support/stats.hpp"
#include "support/text_plot.hpp"

int main() {
  using namespace ulba;
  bench::print_header(
      "Figure 4b — average PE utilization, 32 PEs, 1 strongly erodible rock",
      "Boulmier et al., CLUSTER'19, Fig. 4b: higher usage and 62.5% fewer "
      "LB calls under ULBA");

  const auto std_run =
      erosion::ErosionApp(bench::scaled_app_config(
                              32, 1, erosion::Method::kStandard, 11))
          .run();
  const auto ulba_run =
      erosion::ErosionApp(
          bench::scaled_app_config(32, 1, erosion::Method::kUlba, 11))
          .run();

  std::vector<support::Series> series(2);
  series[0].name = "standard";
  series[1].name = "ULBA";
  std::vector<double> std_util, ulba_util;
  for (const auto& rec : std_run.iterations) {
    series[0].y.push_back(rec.utilization);
    std_util.push_back(rec.utilization);
  }
  for (const auto& rec : ulba_run.iterations) {
    series[1].y.push_back(rec.utilization);
    ulba_util.push_back(rec.utilization);
  }

  std::printf("\nPer-iteration utilization (mean load / max load):\n\n");
  std::printf("%s\n", support::plot_series(series, 100, 18, 0.0, 1.02).c_str());

  std::printf("  standard LB calls at iterations: ");
  for (auto it : std_run.lb_iterations) std::printf("%lld ", static_cast<long long>(it));
  std::printf("\n  ULBA     LB calls at iterations: ");
  for (auto it : ulba_run.lb_iterations) std::printf("%lld ", static_cast<long long>(it));
  std::printf("\n\n");

  const double std_avg = support::mean(std_util);
  const double ulba_avg = support::mean(ulba_util);
  const double fewer =
      std_run.lb_count > 0
          ? 1.0 - static_cast<double>(ulba_run.lb_count) /
                      static_cast<double>(std_run.lb_count)
          : 0.0;

  std::printf("  mean iteration utilization  standard: %.1f%%  ULBA: %.1f%%\n",
              std_avg * 100.0, ulba_avg * 100.0);
  std::printf("  machine-wide utilization    standard: %.1f%%  ULBA: %.1f%%\n",
              std_run.average_utilization * 100.0,
              ulba_run.average_utilization * 100.0);
  std::printf("  LB calls                    standard: %lld  ULBA: %lld  "
              "(%.1f%% fewer; paper: 62.5%% fewer)\n",
              static_cast<long long>(std_run.lb_count),
              static_cast<long long>(ulba_run.lb_count), fewer * 100.0);
  std::printf("  total time [virtual s]      standard: %.3f  ULBA: %.3f "
              "(gain %.1f%%)\n",
              std_run.total_seconds, ulba_run.total_seconds,
              (std_run.total_seconds - ulba_run.total_seconds) /
                  std_run.total_seconds * 100.0);

  const bool ok = ulba_avg >= std_avg - 0.01 &&
                  ulba_run.lb_count <= std_run.lb_count &&
                  ulba_run.total_seconds <= std_run.total_seconds * 1.02;
  std::printf("\n  verdict: %s\n",
              ok ? "SHAPE REPRODUCED (higher usage, fewer LB calls)"
                 : "SHAPE MISMATCH");
  return ok ? 0 : 1;
}
