// Quickstart: the ULBA analytic model in sixty lines.
//
// Builds an application model (Table I parameters), asks the library for the
// standard method's optimal interval (Menon's τ), ULBA's interval bounds
// (σ⁻, σ⁺), and compares the total parallel time of the two methods over a
// 100-iteration run — the smallest possible version of the paper's Figure 3.
//
//   ./quickstart
//
// Configurable version: `ulba_cli quickstart` (same scenario, Table-I flags).
#include <cstdio>

#include "core/intervals.hpp"
#include "core/schedule.hpp"
#include "core/ulba_model.hpp"

int main() {
  using namespace ulba::core;

  // A 512-PE application: 3 GFLOP per PE initially, 32 PEs keep collecting
  // extra work (think: the stripes holding strongly erodible rocks).
  ModelParams p;
  p.P = 512;
  p.N = 32;
  p.gamma = 100;
  p.omega = 1e9;                       // 1 GFLOPS per PE
  p.w0 = 3e9 * static_cast<double>(p.P);
  p.a = 6e4;                           // everyone grows a little …
  p.m = 3e7;                           // … the hot 32 grow a lot
  p.alpha = 0.5;                       // unload hot PEs by 50 % at LB steps
  p.lb_cost = 1.5;                     // an LB step costs 1.5 s
  p.validate();

  std::printf("Application: P=%lld PEs, N=%lld overloading, gamma=%lld\n",
              static_cast<long long>(p.P), static_cast<long long>(p.N),
              static_cast<long long>(p.gamma));
  std::printf("  dW = %.3g FLOP/iter, m_hat = %.3g, a_hat = %.3g\n\n",
              p.delta_w(), p.m_hat(), p.a_hat());

  // When should the load balancer run?
  std::printf("Menon tau (standard method)   : every %.1f iterations\n",
              menon_tau(p));
  const IntervalBounds b = interval_bounds(p, 0, p.alpha, p.alpha);
  std::printf("ULBA sigma- (no degradation)  : %lld iterations\n",
              static_cast<long long>(b.lower));
  std::printf("ULBA sigma+ (recommended)     : %.1f iterations\n\n", b.upper);

  // Total parallel time, Eq. (4): standard with tau vs. ULBA with sigma+.
  const ScheduleCost t_std = evaluate_standard(p, menon_schedule(p));
  const ScheduleCost t_ulba = evaluate_ulba(p, sigma_plus_schedule(p));
  std::printf("standard method  : %8.2f s  (%zu LB calls)\n",
              t_std.total_seconds, t_std.lb_count);
  std::printf("ULBA, alpha=%.1f  : %8.2f s  (%zu LB calls)\n", p.alpha,
              t_ulba.total_seconds, t_ulba.lb_count);
  std::printf("anticipation gain: %+.1f%%\n",
              (t_std.total_seconds - t_ulba.total_seconds) /
                  t_std.total_seconds * 100.0);
  return 0;
}
