// Interval explorer: how α shapes σ⁻, σ⁺, the LB schedule, and the total
// time — with the exact DP optimum as the reference line.
//
//   ./interval_explorer
//
// Configurable version: `ulba_cli intervals` (Table-I flags, sweep depth).
#include <cstdio>
#include <string>

#include "core/intervals.hpp"
#include "core/schedule.hpp"
#include "opt/dp_optimal.hpp"
#include "support/table.hpp"

namespace {

/// One-line timeline of a schedule: '|' = LB step, '.' = plain iteration.
std::string timeline(const ulba::core::Schedule& s) {
  std::string line(static_cast<std::size_t>(s.gamma()), '.');
  for (auto step : s.steps()) line[static_cast<std::size_t>(step)] = '|';
  return line;
}

}  // namespace

int main() {
  using namespace ulba;

  core::ModelParams p;
  p.P = 1024;
  p.N = 48;
  p.gamma = 100;
  p.omega = 1e9;
  p.w0 = 4e9 * static_cast<double>(p.P);
  p.a = 1e5;
  p.m = 2e7;
  p.lb_cost = 2.0;
  p.alpha = 0.0;
  p.validate();

  std::printf("Model: P=%lld, N=%lld, gamma=%lld, C=%.1fs, tau_Menon=%.1f\n\n",
              static_cast<long long>(p.P), static_cast<long long>(p.N),
              static_cast<long long>(p.gamma), p.lb_cost, core::menon_tau(p));

  support::Table table({"alpha", "sigma-", "sigma+", "LB calls",
                        "T total [s]", "vs standard"});
  const double t_std =
      core::evaluate_standard(p, core::menon_schedule(p)).total_seconds;

  double best_alpha = 0.0, best_time = t_std;
  for (int a10 = 0; a10 <= 10; ++a10) {
    core::ModelParams q = p;
    q.alpha = a10 / 10.0;
    const auto bounds = core::interval_bounds(q, 0, q.alpha, q.alpha);
    const auto schedule = core::sigma_plus_schedule(q);
    const double t = core::evaluate_ulba(q, schedule).total_seconds;
    if (t < best_time) {
      best_time = t;
      best_alpha = q.alpha;
    }
    table.add_row({support::Table::num(q.alpha, 1),
                   std::to_string(bounds.lower),
                   support::Table::num(bounds.upper, 1),
                   std::to_string(schedule.lb_count()),
                   support::Table::num(t, 2),
                   support::Table::pct((t_std - t) / t_std, 2)});
  }
  std::printf("%s\n", table.render(2).c_str());

  core::ModelParams q = p;
  q.alpha = best_alpha;
  const auto sigma_sched = core::sigma_plus_schedule(q);
  const auto dp = opt::optimal_schedule(q, opt::CostModel::kUlba);
  std::printf("best alpha = %.1f\n", best_alpha);
  std::printf("  sigma+ schedule  %s   (%.2f s)\n",
              timeline(sigma_sched).c_str(),
              core::evaluate_ulba(q, sigma_sched).total_seconds);
  std::printf("  DP optimum       %s   (%.2f s)\n", timeline(dp.schedule).c_str(),
              dp.total_seconds);
  std::printf("  standard (tau)   %s   (%.2f s)\n",
              timeline(core::menon_schedule(p)).c_str(), t_std);
  std::printf("\n('|' marks an LB step along the %lld iterations)\n",
              static_cast<long long>(p.gamma));
  return 0;
}
