// Real-threaded ULBA: the full §III-C machinery on the message-passing
// runtime, with genuinely measured (wall-clock) iteration times.
//
// Eight ranks iterate over a global sequence of work units, split
// contiguously like the paper's stripes. The units belong to "groups" (think
// columns): group 2 keeps spawning new units — whoever owns that region of
// the sequence is the overloading PE. Every iteration each rank:
//
//   1. burns real CPU time proportional to its owned units,
//   2. measures its workload-increase rate and gossips its WIR database to a
//      rotating peer (real messages, epidemic merge),
//   3. agrees on the iteration time (allreduce max) and feeds the Zhai-style
//      degradation trigger,
//   4. on a trigger, submits its α (z-score self-detection) to rank 0, which
//      computes the Algorithm-2 weight targets, re-cuts the unit sequence,
//      and broadcasts the new boundaries.
//
// Run once with the standard method (α ≡ 0) and once with ULBA, same
// workload, and compare.
//
//   ./adaptive_scheduler
//
// The flag-driven erosion counterpart of this machinery: `ulba_cli erosion`.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <vector>

#include "core/detector.hpp"
#include "core/policy.hpp"
#include "core/trigger.hpp"
#include "core/wir_database.hpp"
#include "lb/stripe_partitioner.hpp"
#include "runtime/spmd.hpp"

namespace {

constexpr int kRanks = 8;
constexpr int kGroups = 64;         // "columns" of the unit sequence
constexpr int kIterations = 48;
constexpr int kHotGroup = 21;       // this group keeps spawning units
constexpr int kUnitsPerGroup = 48;
constexpr double kAlpha = 0.5;
constexpr int kFlopPerUnit = 12000;

/// Burn real CPU time for `units` work units.
double burn(double units) {
  volatile double x = 1.0;
  const auto steps = static_cast<long>(units * kFlopPerUnit);
  for (long i = 0; i < steps; ++i) x = x * 1.0000001 + 1e-9;
  return x;
}

/// Serialize/deserialize a WIR database as [wir…, stamp…] for gossip.
std::vector<double> pack(const ulba::core::WirDatabase& db) {
  std::vector<double> out;
  out.reserve(2 * static_cast<std::size_t>(db.pe_count()));
  for (std::int64_t pe = 0; pe < db.pe_count(); ++pe) {
    out.push_back(db.entry(pe).wir);
    out.push_back(static_cast<double>(db.entry(pe).iteration));
  }
  return out;
}

void unpack_merge(ulba::core::WirDatabase& db, const std::vector<double>& w) {
  for (std::int64_t pe = 0; pe < db.pe_count(); ++pe) {
    const auto stamp =
        static_cast<std::int64_t>(w[2 * static_cast<std::size_t>(pe) + 1]);
    if (stamp >= 0)
      db.update(pe, w[2 * static_cast<std::size_t>(pe)], stamp);
  }
}

struct RunStats {
  double total_seconds = 0.0;
  int lb_calls = 0;
  double mean_utilization = 0.0;
};

RunStats run_method(bool use_ulba) {
  RunStats stats;
  std::vector<double> per_rank_util_sum(kRanks, 0.0);

  ulba::runtime::spmd_run(kRanks, [&](ulba::runtime::Comm& comm) {
    using Clock = std::chrono::steady_clock;
    const int rank = comm.rank();

    // Replicated deterministic workload: units per group. Only ownership and
    // computation are distributed; the spawn schedule is known to all (the
    // erosion analogue: the domain geometry is globally defined, the cells
    // are computed by their owner).
    std::vector<double> group_units(kGroups, kUnitsPerGroup);
    ulba::lb::StripeBoundaries bounds =
        ulba::lb::even_partition(kGroups, kRanks);

    ulba::core::WirDatabase db(kRanks);
    const ulba::core::OverloadDetector detector(3.0);
    ulba::core::AdaptiveTrigger trigger;
    ulba::core::LbCostEstimator lb_cost(0.0005);
    double prev_owned = 0.0;
    bool wir_valid = false;
    double smoothed_wir = 0.0;
    const auto t0 = Clock::now();

    for (int iter = 0; iter < kIterations; ++iter) {
      // --- compute my stripe of the unit sequence (real CPU burn)
      double owned = 0.0;
      for (std::int64_t g = bounds[static_cast<std::size_t>(rank)];
           g < bounds[static_cast<std::size_t>(rank) + 1]; ++g)
        owned += group_units[static_cast<std::size_t>(g)];
      const auto it0 = Clock::now();
      (void)burn(owned);
      const double my_seconds =
          std::chrono::duration<double>(Clock::now() - it0).count();

      // --- WIR monitoring + one gossip round (real messages)
      if (wir_valid) {
        const double raw = std::max(0.0, owned - prev_owned);
        smoothed_wir = 0.5 * raw + 0.5 * smoothed_wir;
        db.update(rank, smoothed_wir, iter);
      }
      prev_owned = owned;
      wir_valid = true;
      const int shift = 1 + iter % (kRanks - 1);
      comm.send_span<double>((rank + shift) % kRanks, /*tag=*/1, pack(db));
      const auto incoming = comm.recv_vector<double>(
          (rank - shift + kRanks) % kRanks, /*tag=*/1);
      ulba::core::WirDatabase other(kRanks);
      unpack_merge(other, incoming);
      (void)db.merge_from(other);

      // --- everyone agrees on the iteration's parallel time
      const double step_seconds = comm.allreduce(
          my_seconds, [](double a, double b) { return std::max(a, b); });
      const double all_seconds = comm.allreduce(my_seconds);
      if (rank == 0)
        per_rank_util_sum[0] +=
            all_seconds / (kRanks * step_seconds);  // utilization
      trigger.record_iteration(step_seconds);

      // --- adaptive LB (Algorithm 1 + Algorithm 2, centralized at rank 0)
      if (iter + 1 < kIterations &&
          trigger.should_balance(lb_cost.average())) {
        const auto lb0 = Clock::now();
        double my_alpha = 0.0;
        if (use_ulba &&
            detector.is_overloading(db.entry(rank).wir, db.wirs()))
          my_alpha = kAlpha;
        const auto alphas = comm.gather(my_alpha, 0);
        if (rank == 0) {
          const double total = std::accumulate(group_units.begin(),
                                               group_units.end(), 0.0);
          const auto assignment =
              ulba::core::compute_lb_weights(alphas, total);
          bounds = ulba::lb::partition_by_weight(group_units,
                                                 assignment.fractions);
          ++stats.lb_calls;
        }
        std::vector<std::int64_t> new_bounds =
            rank == 0 ? bounds : std::vector<std::int64_t>{};
        comm.broadcast_vector(new_bounds, 0);
        // "Migrate": pay real CPU time proportional to the units entering or
        // leaving this rank — without it an LB step is nearly free and the
        // degradation trigger fires on timer noise alone.
        double new_owned = 0.0;
        for (std::int64_t g = new_bounds[static_cast<std::size_t>(rank)];
             g < new_bounds[static_cast<std::size_t>(rank) + 1]; ++g)
          new_owned += group_units[static_cast<std::size_t>(g)];
        (void)burn(2.0 * std::abs(new_owned - prev_owned));
        bounds = new_bounds;
        prev_owned = new_owned;
        wir_valid = false;  // the next delta would measure the migration
        trigger.reset();
        comm.barrier();
        // The trigger threshold must be identical on every rank or they will
        // disagree about future LB steps (and deadlock in the collectives) —
        // agree on the step's cost with a max-reduction.
        const double lb_seconds =
            std::chrono::duration<double>(Clock::now() - lb0).count();
        lb_cost.observe(comm.allreduce(
            lb_seconds, [](double a, double b) { return std::max(a, b); }));
      }

      // --- application dynamics: the hot group keeps spawning work
      group_units[kHotGroup] += 10.0;
      for (int g = 0; g < kGroups; ++g)
        group_units[static_cast<std::size_t>(g)] += 0.125;
    }

    if (rank == 0) {
      stats.total_seconds =
          std::chrono::duration<double>(Clock::now() - t0).count();
      stats.mean_utilization = per_rank_util_sum[0] / kIterations;
    }
  });
  return stats;
}

}  // namespace

int main() {
  std::printf("Adaptive scheduler on the thread-backed message-passing "
              "runtime\n");
  std::printf("(%d ranks, %d unit groups, group %d overloads; real CPU burn, "
              "real messages)\n\n",
              kRanks, kGroups, kHotGroup);

  std::printf("warm-up (calibrates the CPU) ...\n");
  (void)burn(200.0);

  const RunStats std_run = run_method(/*use_ulba=*/false);
  const RunStats ulba_run = run_method(/*use_ulba=*/true);

  std::printf("\nstandard method : %.3f s wall, %d LB calls, mean "
              "utilization %.1f%%\n",
              std_run.total_seconds, std_run.lb_calls,
              std_run.mean_utilization * 100.0);
  std::printf("ULBA alpha=%.1f  : %.3f s wall, %d LB calls, mean "
              "utilization %.1f%%\n",
              kAlpha, ulba_run.total_seconds, ulba_run.lb_calls,
              ulba_run.mean_utilization * 100.0);
  std::printf("gain            : %+.1f%%\n",
              (std_run.total_seconds - ulba_run.total_seconds) /
                  std_run.total_seconds * 100.0);
  std::printf("\n(wall-clock numbers vary with machine load; the decision "
              "sequence is the demonstration)\n");
  return 0;
}
