// The paper's §IV-B application, end to end: a fluid domain with P erodible
// rock discs, one of them strongly erodible, run under the standard LB
// method (Zhai-adaptive trigger) and under ULBA — same seed, identical
// erosion dynamics, different balancing.
//
//   ./erosion_demo [pe_count] [strong_rocks] [seed]
//
// Configurable version: `ulba_cli erosion` (flag-driven domain + alpha).
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "erosion/app.hpp"
#include "support/text_plot.hpp"

namespace {

ulba::erosion::AppConfig demo_config(std::int64_t pe_count,
                                     std::int64_t strong,
                                     std::uint64_t seed,
                                     ulba::erosion::Method method) {
  ulba::erosion::AppConfig c;
  c.pe_count = pe_count;
  c.columns_per_pe = 256;
  c.rows = 384;
  c.rock_radius = 96;
  c.strong_rock_count = strong;
  c.iterations = 180;
  c.method = method;
  c.alpha = 0.4;
  c.seed = seed;
  c.bytes_per_cell = 256.0;
  c.comm.latency_s = 1e-4;
  c.comm.bandwidth_Bps = 2e9;
  return c;
}

void report(const char* name, const ulba::erosion::RunResult& r) {
  std::printf("%s\n", name);
  std::printf("  total time        : %.3f virtual s (compute %.3f + LB %.3f)\n",
              r.total_seconds, r.compute_seconds, r.lb_seconds);
  std::printf("  LB calls          : %lld", static_cast<long long>(r.lb_count));
  if (!r.lb_iterations.empty()) {
    std::printf("  at iterations ");
    for (auto it : r.lb_iterations)
      std::printf("%lld ", static_cast<long long>(it));
  }
  std::printf("\n  avg utilization   : %.1f%%\n",
              r.average_utilization * 100.0);
  std::vector<double> util;
  util.reserve(r.iterations.size());
  for (const auto& rec : r.iterations) util.push_back(rec.utilization);
  std::printf("  utilization trace : %s\n\n",
              ulba::support::sparkline(util).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ulba::erosion;
  const std::int64_t pe_count = argc > 1 ? std::atoll(argv[1]) : 32;
  const std::int64_t strong = argc > 2 ? std::atoll(argv[2]) : 1;
  const auto seed =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : std::uint64_t{11};

  std::printf("Erosion demo: %lld PEs, %lld strongly erodible rock(s) among "
              "%lld, seed %llu\n",
              static_cast<long long>(pe_count), static_cast<long long>(strong),
              static_cast<long long>(pe_count),
              static_cast<unsigned long long>(seed));
  std::printf("(domain %lldx%lld cells, rock radius %d, alpha = 0.4)\n\n",
              static_cast<long long>(pe_count * 256), 384LL, 96);

  const RunResult std_run =
      ErosionApp(demo_config(pe_count, strong, seed, Method::kStandard)).run();
  const RunResult ulba_run =
      ErosionApp(demo_config(pe_count, strong, seed, Method::kUlba)).run();

  report("standard LB method (adaptive trigger of Zhai et al.):", std_run);
  report("ULBA (anticipatory underloading, alpha = 0.4):", ulba_run);

  std::printf("==> ULBA gain: %+.1f%% wall clock, %+.1f pp utilization, "
              "%lld fewer LB calls\n",
              (std_run.total_seconds - ulba_run.total_seconds) /
                  std_run.total_seconds * 100.0,
              (ulba_run.average_utilization - std_run.average_utilization) *
                  100.0,
              static_cast<long long>(std_run.lb_count - ulba_run.lb_count));
  return 0;
}
