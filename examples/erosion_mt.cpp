// The erosion application on real OS threads — every quantity measured, not
// modeled: iteration times from steady_clock, LB cost from the actual gather
// + partition + broadcast + migration-burn sequence, WIRs from observed
// workload deltas, gossip over real messages.
//
//   ./erosion_mt [pe_count] [strong_rocks] [seed]
//
// Configurable version: `ulba_cli erosion --mt`.
#include <cstdio>
#include <cstdlib>

#include "erosion/threaded_app.hpp"
#include "support/text_plot.hpp"

int main(int argc, char** argv) {
  using namespace ulba::erosion;
  ThreadedConfig cfg;
  cfg.pe_count = argc > 1 ? std::atoll(argv[1]) : 8;
  cfg.strong_rock_count = argc > 2 ? std::atoll(argv[2]) : 1;
  cfg.seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 11;
  cfg.columns_per_pe = 96;
  cfg.rows = 96;
  cfg.rock_radius = 24;
  cfg.iterations = 80;
  cfg.alpha = 0.4;

  std::printf("Threaded erosion: %lld ranks (OS threads), %lld strong "
              "rock(s), %lld iterations\n\n",
              static_cast<long long>(cfg.pe_count),
              static_cast<long long>(cfg.strong_rock_count),
              static_cast<long long>(cfg.iterations));

  cfg.method = Method::kStandard;
  const ThreadedRunResult std_run = run_threaded(cfg);
  cfg.method = Method::kUlba;
  const ThreadedRunResult ulba_run = run_threaded(cfg);

  const auto report = [](const char* name, const ThreadedRunResult& r) {
    std::printf("%s\n", name);
    std::printf("  wall clock       : %.3f s (measured)\n", r.wall_seconds);
    std::printf("  LB calls         : %lld  at ",
                static_cast<long long>(r.lb_count));
    for (auto it : r.lb_iterations)
      std::printf("%lld ", static_cast<long long>(it));
    std::printf("\n  mean utilization : %.1f%%\n",
                r.mean_utilization * 100.0);
    std::printf("  iteration times  : %s\n\n",
                ulba::support::sparkline(r.iteration_seconds).c_str());
  };
  report("standard LB method:", std_run);
  report("ULBA (alpha = 0.4):", ulba_run);

  std::printf("==> ULBA gain: %+.1f%% measured wall clock (same erosion "
              "dynamics: %lld == %lld cells eroded)\n",
              (std_run.wall_seconds - ulba_run.wall_seconds) /
                  std_run.wall_seconds * 100.0,
              static_cast<long long>(std_run.eroded_cells),
              static_cast<long long>(ulba_run.eroded_cells));
  std::printf("(wall-clock noise is real; re-run for another sample)\n");
  return 0;
}
